// Package pathenum implements the state-of-the-art single-query HC-s-t
// path enumerator PathEnum (Sun et al., SIGMOD'21) as described in §III
// of the paper: a bidirectional DFS — forward from s on G with budget
// ⌈k/2⌉, backward from t on Gr with budget ⌊k/2⌋ — whose expansions are
// pruned with the hop-bounded distance index (Lemma 3.1), followed by the
// ⊕ concatenation of the two halves.
//
// Two search orders are provided. The plain order expands neighbours as
// stored. The optimised order (the "+" variants of the paper's
// evaluation) additionally (i) picks a cost-balanced cut point using the
// index's BFS level sizes instead of always ⌈k/2⌉, and (ii) expands
// neighbours in ascending residual-distance order so that doomed branches
// are pruned before promising ones are explored.
//
// The specification — an index-free bounded DFS — lives in
// internal/oracle; every test in the repository differentially checks
// against it.
package pathenum

import (
	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/pathjoin"
	"repro/internal/query"
)

// Options selects the search-order variant.
type Options struct {
	// Optimized enables the cost-balanced cut point and ordered
	// expansion of the "+" algorithms.
	Optimized bool
}

// Enumerate runs PathEnum for a single query using the prebuilt index
// entries fwd (distances from q.S on G) and bwd (distances from q.T on
// Gr), emitting every HC-s-t path exactly once. The emitted slice is
// reused and must be copied to be retained.
func Enumerate(g, gr *graph.Graph, q query.Query, fwd, bwd *msbfs.DistMap, opts Options, emit func(path []graph.VertexID)) {
	EnumerateControlled(g, gr, q, fwd, bwd, opts, nil, emit)
}

// EnumerateControlled is Enumerate under a query.Control: the half
// DFSes poll for cancellation every query.PollInterval expansions and
// the join honours the per-query emission limit, so a cancelled or
// satisfied query unwinds promptly with whatever it has emitted. The
// query's completion is recorded on ctrl (keyed by q.ID) unless the run
// was cancelled mid-flight; a nil ctrl reproduces Enumerate exactly.
func EnumerateControlled(g, gr *graph.Graph, q query.Query, fwd, bwd *msbfs.DistMap, opts Options, ctrl *query.Control, emit func(path []graph.VertexID)) {
	if bwd.Dist(q.S) > q.K { // t unreachable within k hops: empty result
		ctrl.MarkComplete(q.ID)
		return
	}
	fb, bb := q.FwdBudget(), q.BwdBudget()
	if opts.Optimized {
		fb, bb = BalancedCut(q, fwd, bwd)
	}
	fwdPaths := pathjoin.NewStore(64, 256)
	bwdPaths := pathjoin.NewStore(64, 256)
	collectHalf(g, q.S, fb, q.K, bwd, opts, ctrl, fwdPaths)
	collectHalf(gr, q.T, bb, q.K, fwd, opts, ctrl, bwdPaths)
	if ctrl.Cancelled() {
		return // partial halves must not reach the join
	}
	pathjoin.JoinHalvesControlled(fwdPaths, bwdPaths, q.K, fb < bb, ctrl, q.ID, emit)
	if !ctrl.Cancelled() {
		ctrl.MarkComplete(q.ID)
	}
}

// BalancedCut picks forward/backward budgets (a, b) with a+b = k
// minimising the imbalance of estimated partial-path counts, which the
// index's per-level reach sizes approximate. It mirrors PathEnum's
// cost-based preference for growing the cheaper side deeper. The unique
// split rule of pathjoin requires a ∈ {⌈k/2⌉, ⌊k/2⌋} to stay correct for
// all result lengths, so the choice is between the two balanced cuts
// (for even k they coincide).
func BalancedCut(q query.Query, fwd, bwd *msbfs.DistMap) (a, b uint8) {
	hi, lo := q.FwdBudget(), q.BwdBudget()
	if hi == lo {
		return hi, lo
	}
	// Give the extra hop to the side whose frontier grows slower.
	fGrow := levelCount(fwd, hi)
	bGrow := levelCount(bwd, hi)
	if bGrow < fGrow {
		return lo, hi
	}
	return hi, lo
}

// levelCount counts vertices at exactly distance d in dm.
func levelCount(dm *msbfs.DistMap, d uint8) int {
	c := 0
	for _, v := range dm.Visited() {
		if dm.Dist(v) == d {
			c++
		}
	}
	return c
}

// CollectHalf runs one side of the bidirectional search standalone: it
// records into out every simple partial path rooted at root with at
// most budget hops, pruned against other — the hop-bounded distance
// map of the query's opposite endpoint in the opposite direction
// (dist over Gr from t for a forward half on G; dist over G from s for
// a backward half on Gr). The two stores it fills are exactly what
// pathjoin.JoinHalvesControlled consumes.
//
// The shard layer reuses this at partition boundaries: the shard
// owning s collects the forward half, the shard owning t the backward
// half, and the coordinator joins the gathered halves — the same
// split-at-⌈k/2⌉ machinery a single-process engine applies at a
// query's midpoint, applied at the shard boundary instead.
func CollectHalf(g *graph.Graph, root graph.VertexID, budget, k uint8, other *msbfs.DistMap, opts Options, ctrl *query.Control, out *pathjoin.Store) {
	collectHalf(g, root, budget, k, other, opts, ctrl, out)
}

// collectHalf performs the pruned DFS of Algorithm 1's Search procedure:
// it records every simple partial path from root with at most budget
// hops, expanding only neighbours w with |p| + dist(w, other-endpoint)
// < k (Lemma 3.1; other is the map of distances to the opposite
// endpoint of the query). The DFS polls ctrl every query.PollInterval
// expansions and unwinds as soon as the run is cancelled.
func collectHalf(g *graph.Graph, root graph.VertexID, budget, k uint8, other *msbfs.DistMap, opts Options, ctrl *query.Control, out *pathjoin.Store) {
	path := make([]graph.VertexID, 1, int(budget)+1)
	path[0] = root
	// Dense on-path membership: one bool per vertex beats a hash map in
	// the expansion loop, and push/pop keeps it clean without clearing.
	onPath := make([]bool, g.NumVertices())
	onPath[root] = true
	// Per-depth scratch buffers: each recursion level sorts into its own
	// slice so deeper levels cannot clobber a list the parent is still
	// iterating.
	scratch := make([][]graph.VertexID, int(budget)+1)
	steps := 0
	stopped := false
	var rec func()
	rec = func() {
		if ctrl.Poll(&steps, &stopped) {
			return
		}
		out.Add(path)
		hops := uint8(len(path) - 1)
		if hops >= budget {
			return
		}
		v := path[len(path)-1]
		nbrs := g.OutNeighbors(v)
		if opts.Optimized {
			scratch[hops] = orderByResidual(nbrs, other, scratch[hops][:0])
			nbrs = scratch[hops]
		}
		for _, w := range nbrs {
			if stopped {
				return
			}
			if onPath[w] {
				continue
			}
			// Lemma 3.1: after stepping to w the path has hops+1 edges
			// and still needs dist(w, other) more, so require
			// hops + dist(w, other) < k.
			if d := other.Dist(w); d == msbfs.Unreachable || hops+d >= k {
				continue
			}
			path = append(path, w)
			onPath[w] = true
			rec()
			onPath[w] = false
			path = path[:len(path)-1]
		}
	}
	rec()
}

// orderByResidual returns nbrs sorted by ascending distance to the
// opposite endpoint (unreachable last), appended into scratch.
// Insertion sort: neighbour lists are short and the comparator runs in
// the innermost search loop, where sort.Slice's indirection costs more
// than the sort saves.
func orderByResidual(nbrs []graph.VertexID, other *msbfs.DistMap, scratch []graph.VertexID) []graph.VertexID {
	scratch = append(scratch, nbrs...)
	for i := 1; i < len(scratch); i++ {
		w := scratch[i]
		key := other.Dist(w)
		j := i - 1
		for j >= 0 && other.Dist(scratch[j]) > key {
			scratch[j+1] = scratch[j]
			j--
		}
		scratch[j+1] = w
	}
	return scratch
}

// EnumerateStandalone builds the two BFS index entries itself and then
// enumerates; the per-query convenience used by examples and the CLI.
func EnumerateStandalone(g, gr *graph.Graph, q query.Query, opts Options, emit func(path []graph.VertexID)) {
	fwd := msbfs.Single(g, q.S, q.K)
	bwd := msbfs.Single(gr, q.T, q.K)
	Enumerate(g, gr, q, fwd, bwd, opts, emit)
}

// Materialized mimics the Fig. 3(c) measurement: given pre-enumerated
// results in a store, it scans them once (the "retrieve and scan"
// baseline the paper uses to expose the enumeration/materialisation
// gap) and returns the number of paths touched.
func Materialized(results *pathjoin.Store) int {
	touched := 0
	results.Each(func(p []graph.VertexID) {
		if len(p) > 0 {
			touched++
		}
	})
	return touched
}
