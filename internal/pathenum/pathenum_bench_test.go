package pathenum

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/oracle"
	"repro/internal/query"
)

// benchCase caches one dense-community graph and a mid-range query with
// a non-trivial result set.
type benchCase struct {
	g, gr    *graph.Graph
	q        query.Query
	fwd, bwd *msbfs.DistMap
}

var bc *benchCase

func getCase(b *testing.B) *benchCase {
	b.Helper()
	if bc == nil {
		g := graph.GenCommunityPowerLaw(4000, 150, 7, 0.98, 12)
		gr := g.Reverse()
		q := query.Query{S: 10, T: 90, K: 6}
		bc = &benchCase{
			g: g, gr: gr, q: q,
			fwd: msbfs.Single(g, q.S, q.K),
			bwd: msbfs.Single(gr, q.T, q.K),
		}
	}
	return bc
}

// BenchmarkEnumeratePlain measures PathEnum with the stored neighbour
// order.
func BenchmarkEnumeratePlain(b *testing.B) {
	c := getCase(b)
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		Enumerate(c.g, c.gr, c.q, c.fwd, c.bwd, Options{}, func([]graph.VertexID) { n++ })
	}
	b.ReportMetric(float64(n), "paths")
}

// BenchmarkEnumerateOptimized measures the "+" search order (balanced
// cut plus residual-distance expansion), the per-query ablation behind
// BasicEnum+ and BatchEnum+.
func BenchmarkEnumerateOptimized(b *testing.B) {
	c := getCase(b)
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		Enumerate(c.g, c.gr, c.q, c.fwd, c.bwd, Options{Optimized: true}, func([]graph.VertexID) { n++ })
	}
	b.ReportMetric(float64(n), "paths")
}

// BenchmarkEnumerateStandalone includes the per-query index build,
// matching the original PathEnum's query cost model.
func BenchmarkEnumerateStandalone(b *testing.B) {
	c := getCase(b)
	for i := 0; i < b.N; i++ {
		EnumerateStandalone(c.g, c.gr, c.q, Options{}, func([]graph.VertexID) {})
	}
}

// BenchmarkBruteForce calibrates the oracle's cost against the pruned
// enumerators on the same query.
func BenchmarkBruteForce(b *testing.B) {
	c := getCase(b)
	for i := 0; i < b.N; i++ {
		oracle.Enumerate(c.g, c.q, func([]graph.VertexID) {})
	}
}
