// Package hotalloc_a exercises the hotalloc analyzer: //hcpath:noalloc
// functions must not contain allocating constructs.
package hotalloc_a

import (
	"fmt"
	"sync/atomic"
)

type counter interface {
	Bump()
}

type point struct{ x, y int }

//hcpath:noalloc
func makesSlice(n int) []int {
	return make([]int, n) // want `makesSlice is //hcpath:noalloc but calls make`
}

//hcpath:noalloc
func newsValue() *point {
	return new(point) // want `newsValue is //hcpath:noalloc but calls new`
}

//hcpath:noalloc
func sliceLiteral() []int {
	return []int{1, 2, 3} // want `sliceLiteral is //hcpath:noalloc but builds a slice literal`
}

//hcpath:noalloc
func mapLiteral() map[int]int {
	return map[int]int{1: 1} // want `mapLiteral is //hcpath:noalloc but builds a map literal`
}

//hcpath:noalloc
func escapingLiteral() *point {
	return &point{1, 2} // want `escapingLiteral is //hcpath:noalloc but takes the address of a composite literal`
}

//hcpath:noalloc
func appendFresh(x, y []int) []int {
	y = append(x, 1) // want `appendFresh is //hcpath:noalloc but appends to a destination other than its source`
	return y
}

//hcpath:noalloc
func appendInPlace(x []int, v int) []int {
	x = append(x, v) // amortised allocation-free into the retained buffer
	return x
}

//hcpath:noalloc
func mapWrite(m map[int]int) {
	m[1] = 2 // want `mapWrite is //hcpath:noalloc but writes to a map`
}

//hcpath:noalloc
func concat(a, b string) string {
	return a + b // want `concat is //hcpath:noalloc but concatenates strings`
}

//hcpath:noalloc
func formats(v int) string {
	return fmt.Sprintf("%d", v) // want `formats is //hcpath:noalloc but calls fmt\.Sprintf`
}

//hcpath:noalloc
func closes(v int) func() int {
	return func() int { return v } // want `closes is //hcpath:noalloc but creates a closure`
}

//hcpath:noalloc
func spawns(ch chan int) {
	go drain(ch) // want `spawns is //hcpath:noalloc but starts a goroutine`
}

//hcpath:noalloc
func callsHelper(v int) int {
	return helper(v) // want `callsHelper is //hcpath:noalloc but calls helper, which is not annotated`
}

//hcpath:noalloc
func callsAnnotated(v int) int {
	return annotatedHelper(v) // the guarantee composes: annotated callees are fine
}

//hcpath:noalloc
func annotatedHelper(v int) int {
	return v * 2
}

//hcpath:noalloc
func crossPackage(p *int64) {
	atomic.AddInt64(p, 1) // cross-package calls are trusted
}

//hcpath:noalloc
func dynamicDispatch(c counter) {
	c.Bump() // interface methods are trusted like a package boundary
}

// helper is not annotated, so callers under //hcpath:noalloc may not
// lean on it — and it itself may allocate freely.
func helper(v int) int {
	buf := make([]int, v)
	return len(buf)
}

func drain(ch chan int) {
	for range ch {
	}
}
