package epochbind_a

import (
	"testing"

	"repro/internal/batchenum"
)

// Tests pin epochs on purpose — the analyzer skips _test.go files, so
// none of these constants are diagnosed.
func TestFixtureEpochExemption(t *testing.T) {
	opts := batchenum.Options{Epoch: 7}
	opts.Epoch = 3
	if opts.Epoch != 3 {
		t.Fatal("unreachable")
	}
}
