// Package epochbind_a exercises the epochbind analyzer: index epochs
// must derive from the live snapshot, never a compile-time constant.
package epochbind_a

import (
	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/query"
	"repro/internal/store"
)

const frozenEpoch = 12

// acquireConstant pins the cache generation forever.
func acquireConstant(p hcindex.Provider, g, gr *graph.Graph, qs []query.Query) *hcindex.Index {
	return p.Acquire(g, gr, 42, qs) // want `constant 42 as epoch argument`
}

// acquireNamedConstant is no better: the type checker still sees a
// constant.
func acquireNamedConstant(p hcindex.Provider, g, gr *graph.Graph, qs []query.Query) *hcindex.Index {
	return p.Acquire(g, gr, frozenEpoch, qs) // want `constant 12 as epoch argument`
}

// acquireSnapshot is the reported fix applied: the epoch follows the
// store.
func acquireSnapshot(p hcindex.Provider, snap *store.Snapshot, qs []query.Query) *hcindex.Index {
	return p.Acquire(snap.Graph(), snap.Reverse(), snap.Epoch(), qs)
}

// acquireVariable trusts the caller to have derived the value.
func acquireVariable(p hcindex.Provider, g, gr *graph.Graph, epoch uint64, qs []query.Query) *hcindex.Index {
	return p.Acquire(g, gr, epoch, qs)
}

// optionsConstant freezes the engine's epoch in a composite literal.
func optionsConstant() batchenum.Options {
	return batchenum.Options{
		Epoch: 7, // want `constant 7 as Epoch field`
	}
}

// optionsOmitted is how a static-graph engine says epoch zero: by not
// saying anything.
func optionsOmitted() batchenum.Options {
	return batchenum.Options{}
}

// optionsDerived threads the snapshot's epoch through.
func optionsDerived(snap *store.Snapshot) batchenum.Options {
	opts := batchenum.Options{Epoch: snap.Epoch()}
	opts.Epoch = snap.Epoch()
	return opts
}

// assignConstant rebinds an existing options value to a frozen epoch.
func assignConstant(opts batchenum.Options) batchenum.Options {
	opts.Epoch = 3 // want `constant 3 as Epoch field`
	return opts
}
