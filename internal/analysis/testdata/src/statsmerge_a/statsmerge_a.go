// Package statsmerge_a exercises the statsmerge analyzer, including a
// reproduction of the PR 5 drift: Plan and Shed were added to the
// service totals and had to be wired through the merge path by hand.
package statsmerge_a

// Totals mirrors the service accumulator shape.
type Totals struct {
	Batches int
	Queries int
	Plan    int
	Shed    int
}

// BatchStats is the per-batch report merged into Totals.
type BatchStats struct {
	Queries int
	Plan    int
	Shed    int
}

// addBatchDrifted excludes Shed deliberately but forgot Plan when the
// field landed — the PR 5 scenario.
//
//hcpath:mergefields Totals -Shed
func (t *Totals) addBatchDrifted(b BatchStats) { // want `addBatchDrifted does not merge field Plan of Totals`
	t.Batches++
	t.Queries += b.Queries
}

// addBatchFixed is the reported fix applied: Plan accumulated, Shed
// still a reviewed omission.
//
//hcpath:mergefields Totals -Shed
func (t *Totals) addBatchFixed(b BatchStats) {
	t.Batches++
	t.Queries += b.Queries
	t.Plan += b.Plan
}

// Add is the canonical implicit merge shape — no directive needed —
// and it forgot Shed.
func (b *BatchStats) Add(o BatchStats) { // want `Add does not merge field Shed of BatchStats`
	b.Queries += o.Queries
	b.Plan += o.Plan
}

// Merge is the implicit shape done right.
func (b *BatchStats) Merge(o BatchStats) {
	b.Queries += o.Queries
	b.Plan += o.Plan
	b.Shed += o.Shed
}

// mergeByLiteral touches every field through a composite literal; keys
// count as touches.
//
//hcpath:mergefields BatchStats
func mergeByLiteral(a, b BatchStats) BatchStats {
	return BatchStats{
		Queries: a.Queries + b.Queries,
		Plan:    a.Plan + b.Plan,
		Shed:    a.Shed + b.Shed,
	}
}

// staleExclusion excludes Plan on the directive yet merges it anyway.
//
//hcpath:mergefields BatchStats -Plan
func (b *BatchStats) staleExclusion(o BatchStats) { // want `stale exclusion: staleExclusion merges field Plan of BatchStats`
	b.Queries += o.Queries
	b.Plan += o.Plan
	b.Shed += o.Shed
}

// helper has no merge obligation: not Add/Merge, no directive.
func helper(b BatchStats) int {
	return b.Queries
}
