// Package ctrlpoll_a exercises the ctrlpoll analyzer: adjacency loops
// in Control-bearing functions must be covered by ctrl.Poll.
package ctrlpoll_a

import (
	"repro/internal/graph"
	"repro/internal/query"
)

// scanNoPoll consults Cancelled per path instead of Poll per step — the
// cancellation-dead hot loop the analyzer exists for.
func scanNoPoll(g *graph.Graph, ctrl *query.Control, v graph.VertexID) int {
	n := 0
	if ctrl.Cancelled() {
		return 0
	}
	for _, w := range g.OutNeighbors(v) { // want `never calls \(\*query\.Control\)\.Poll`
		n += int(w)
	}
	return n
}

// scanPoll is the reported fix applied: the same loop polling per step.
func scanPoll(g *graph.Graph, ctrl *query.Control, v graph.VertexID) int {
	n := 0
	steps, stopped := 0, false
	for _, w := range g.OutNeighbors(v) {
		if ctrl.Poll(&steps, &stopped) {
			return n
		}
		n += int(w)
	}
	return n
}

// bfs scans adjacency with no Control in sight; on its own that is fine
// (index builds are not cancellable).
func bfs(g *graph.Graph, v graph.VertexID) int {
	n := 0
	for _, w := range g.OutNeighbors(v) {
		n += g.OutDegree(w)
	}
	return n
}

// driverUnmonitored hands work to a scanning helper that cannot observe
// the Control — the transitive form of the dead loop.
func driverUnmonitored(g *graph.Graph, ctrl *query.Control, frontier []graph.VertexID) int {
	n := 0
	if ctrl.Cancelled() {
		return 0
	}
	for _, v := range frontier { // want `never calls \(\*query\.Control\)\.Poll`
		n += bfs(g, v)
	}
	return n
}

// bfsCtrl is a scanning helper that does receive the Control and polls.
func bfsCtrl(g *graph.Graph, ctrl *query.Control, v graph.VertexID) int {
	n := 0
	steps, stopped := 0, false
	for _, w := range g.OutNeighbors(v) {
		if ctrl.Poll(&steps, &stopped) {
			return n
		}
		n += int(w)
	}
	return n
}

// driverMonitored passes its Control down to the scanner, so the inner
// loops poll even though this function does not.
func driverMonitored(g *graph.Graph, ctrl *query.Control, frontier []graph.VertexID) int {
	n := 0
	for _, v := range frontier {
		n += bfsCtrl(g, ctrl, v)
	}
	return n
}

// walker carries its Control in a field; methods are checked like
// functions.
type walker struct {
	g    *graph.Graph
	ctrl *query.Control
}

func (w *walker) deadLoop(v graph.VertexID) int {
	n := 0
	for _, u := range w.g.OutNeighbors(v) { // want `never calls \(\*query\.Control\)\.Poll`
		n += int(u)
	}
	return n
}

func (w *walker) liveLoop(v graph.VertexID) int {
	n := 0
	steps, stopped := 0, false
	for _, u := range w.g.OutNeighbors(v) {
		if w.ctrl.Poll(&steps, &stopped) {
			return n
		}
		n += int(u)
	}
	return n
}

// methodMonitored loops over calls to a receiver that carries the
// Control — monitored, no diagnostic.
func methodMonitored(w *walker, frontier []graph.VertexID) int {
	n := 0
	for _, v := range frontier {
		n += w.liveLoop(v)
	}
	return n
}

// straightLine probes adjacency outside any loop; nothing to poll.
func straightLine(g *graph.Graph, ctrl *query.Control, v graph.VertexID) int {
	if ctrl.Cancelled() {
		return 0
	}
	return g.OutDegree(v)
}
