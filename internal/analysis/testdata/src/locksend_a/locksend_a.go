// Package locksend_a exercises the locksend analyzer: blocking
// operations under a held mutex.
package locksend_a

import "sync"

type server struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	ch     chan int
	onDone func(int)
	n      int
}

// sendUnderLock is the collector-deadlock shape itself.
func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

// sendAfterUnlock is the reported fix applied: the critical section
// ends before the send.
func (s *server) sendAfterUnlock(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- v
}

// receiveUnderRLock blocks readers and writers alike.
func (s *server) receiveUnderRLock() int {
	s.rw.RLock()
	v := <-s.ch // want `channel receive while holding s\.rw`
	s.rw.RUnlock()
	return v
}

// selectUnderLock is reported once at the select.
func (s *server) selectUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select performs channel operations while holding s\.mu`
	case s.ch <- v:
	default:
	}
}

// rangeUnderLock drains a channel inside the critical section.
func (s *server) rangeUnderLock() int {
	total := 0
	s.mu.Lock()
	for v := range s.ch { // want `range receives from a channel while holding s\.mu`
		total += v
	}
	s.mu.Unlock()
	return total
}

// waitUnderLock joins goroutines that may need the lock to finish.
func (s *server) waitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while holding s\.mu`
}

// callbackUnderLock invokes an arbitrary function field while locked;
// it can do anything, including re-entering the lock.
func (s *server) callbackUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onDone(v) // want `call of function-typed field onDone while holding s\.mu`
}

// paramUnderLock: same for a function-typed parameter.
func (s *server) paramUnderLock(fn func()) {
	s.mu.Lock()
	fn() // want `call of function-typed value fn while holding s\.mu`
	s.mu.Unlock()
}

// suppressed documents a reviewed bounded-blocking design.
func (s *server) suppressed(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//hcpath:locksend-ok consumer is guaranteed live while mu is held
	s.ch <- v
}

// branchBalanced releases the lock on every path of the if before the
// send; the branch-intersection tracking must not report it.
func (s *server) branchBalanced(v int, fast bool) {
	s.mu.Lock()
	if fast {
		s.n++
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	s.ch <- v
}

// closureNotInherited: the literal runs later, outside this critical
// section; only its capture is evaluated under the lock.
func (s *server) closureNotInherited() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.n
	return func() { s.ch <- v }
}

// condWait is exempt: sync.Cond.Wait requires the lock by contract and
// releases it while blocked.
func (s *server) condWait(c *sync.Cond) {
	s.mu.Lock()
	for s.n == 0 {
		c.Wait()
	}
	s.mu.Unlock()
}

// staticCall: calls with a statically known callee are trusted.
func (s *server) staticCall() {
	s.mu.Lock()
	s.bump()
	s.mu.Unlock()
}

func (s *server) bump() { s.n++ }
