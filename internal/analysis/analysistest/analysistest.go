// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	// want `regexp` `regexp` ...
//
// on the line the diagnostic is expected at. Each backquoted (or
// double-quoted) regexp must match the message of a distinct diagnostic
// reported on that line; diagnostics on lines without a matching
// expectation, and expectations no diagnostic matched, both fail the
// test. Fixtures live under testdata/src/<pkg>/ and are ordinary Go
// packages — they may import the repository's real packages, and their
// in-package _test.go files are loaded too (epochbind's test-file
// exemption relies on this).
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one `want` regexp with its source location.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package from testdata/src/<pkg>, applies a,
// and reports mismatches between diagnostics and want comments through
// t.Errorf.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	for _, pkgName := range pkgs {
		dir := filepath.Join(testdata, "src", pkgName)
		pkg, err := loader.LoadDir(dir, pkgName, true)
		if err != nil {
			t.Errorf("loading fixture %s: %v", pkgName, err)
			continue
		}
		findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on fixture %s: %v", a.Name, pkgName, err)
			continue
		}
		checkExpectations(t, pkg, findings)
	}
}

func checkExpectations(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, fileExpectations(t, pkg, f)...)
	}
	for _, d := range findings {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on d's line whose regexp
// matches d's message, reporting whether one was found.
func claim(wants []*expectation, d analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func fileExpectations(t *testing.T, pkg *analysis.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, raw := range splitPatterns(text) {
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Errorf("%s: bad want regexp `%s`: %v", pos, raw, err)
					continue
				}
				out = append(out, &expectation{
					file: pos.Filename,
					line: pos.Line,
					re:   re,
					raw:  raw,
				})
			}
		}
	}
	return out
}

// splitPatterns extracts the quoted regexps of a want comment's body,
// accepting backquoted and double-quoted (Go syntax) strings.
func splitPatterns(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(out, s[1:])
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Go-quoted string: the first unescaped quote closes it.
			closed := false
			for i := 1; i < len(s); i++ {
				if s[i] != '"' || s[i-1] == '\\' {
					continue
				}
				if dec, err := strconv.Unquote(s[:i+1]); err == nil {
					out = append(out, dec)
					s = s[i+1:]
					closed = true
				}
				break
			}
			if !closed {
				return out // unterminated or malformed; stop
			}
		default:
			return out
		}
	}
}
