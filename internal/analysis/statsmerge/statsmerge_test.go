package statsmerge_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statsmerge"
)

func TestStatsmerge(t *testing.T) {
	analysistest.Run(t, "../testdata", statsmerge.Analyzer, "statsmerge_a")
}
