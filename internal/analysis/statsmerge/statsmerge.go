// Package statsmerge enforces struct-field exhaustiveness on stats
// merge and accumulate functions, ending silent counter drift: a field
// added to a stats struct but forgotten in its merge path compiles and
// runs, under-reporting forever (PR 5 wired Plan and Shed through the
// service totals by hand — exactly the step this analyzer makes
// mandatory).
//
// Two ways a function becomes a merge function:
//
//   - implicitly: a method named Add or Merge whose single parameter
//     has the same struct type as its receiver;
//   - explicitly: a //hcpath:mergefields TypeName directive in the
//     function's doc comment.
//
// Every field of the struct must then be mentioned in the function body
// (a selector on a value of the type, or a key in a composite literal
// of the type). Deliberate omissions are spelled out on the directive
// as -Field exclusions — e.g.
//
//	//hcpath:mergefields Totals -Epoch -Shed
//
// so the omission is visible and reviewed instead of accidental. An
// exclusion for a field the function does touch is itself reported as
// stale, keeping the lists minimal.
package statsmerge

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the statsmerge analysis.
var Analyzer = &analysis.Analyzer{
	Name: "statsmerge",
	Doc:  "stats merge functions must touch every struct field or exclude it explicitly",
	Run:  run,
}

const directive = "mergefields"

// check is one exhaustiveness obligation of one function.
type check struct {
	typ      *types.Named
	excluded map[string]bool
	explicit bool // from a directive (exclusions allowed)
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	checks := directiveChecks(pass, fd)
	if im := implicitCheck(pass, fd); im != nil {
		if _, dup := checks[im.typ.Obj().Name()]; !dup {
			checks[im.typ.Obj().Name()] = im
		}
	}
	if len(checks) == 0 {
		return
	}
	for _, c := range checks {
		verify(pass, fd, c)
	}
}

// directiveChecks parses every //hcpath:mergefields line of fd's doc.
func directiveChecks(pass *analysis.Pass, fd *ast.FuncDecl) map[string]*check {
	out := make(map[string]*check)
	if fd.Doc == nil {
		return out
	}
	for _, cm := range fd.Doc.List {
		rest, found := strings.CutPrefix(cm.Text, "//hcpath:"+directive)
		if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			pass.Reportf(cm.Pos(), "//hcpath:%s needs a struct type name", directive)
			continue
		}
		obj := pass.Pkg.Scope().Lookup(fields[0])
		tn, ok := obj.(*types.TypeName)
		if !ok {
			pass.Reportf(cm.Pos(), "//hcpath:%s %s: no such type in %s", directive, fields[0], pass.Pkg.Name())
			continue
		}
		// Unalias so a directive can name a package-local alias of a
		// struct declared elsewhere (service.PlanStats is one).
		named, ok := types.Unalias(tn.Type()).(*types.Named)
		if !ok || !isStruct(named) {
			pass.Reportf(cm.Pos(), "//hcpath:%s %s: not a struct type", directive, fields[0])
			continue
		}
		c := &check{typ: named, excluded: make(map[string]bool), explicit: true}
		for _, ex := range fields[1:] {
			name, ok := strings.CutPrefix(ex, "-")
			if !ok {
				pass.Reportf(cm.Pos(), "//hcpath:%s %s: exclusions must be written -Field, got %q", directive, fields[0], ex)
				continue
			}
			if !hasField(named, name) {
				pass.Reportf(cm.Pos(), "//hcpath:%s %s: unknown excluded field %s", directive, fields[0], name)
				continue
			}
			c.excluded[name] = true
		}
		out[fields[0]] = c
	}
	return out
}

// implicitCheck recognises the canonical merge shape: method Add/Merge
// with one parameter of the receiver's own struct type.
func implicitCheck(pass *analysis.Pass, fd *ast.FuncDecl) *check {
	if fd.Recv == nil || (fd.Name.Name != "Add" && fd.Name.Name != "Merge") {
		return nil
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 {
		return nil
	}
	recv, ok := analysis.Deref(sig.Recv().Type()).(*types.Named)
	if !ok || !isStruct(recv) || recv.Obj().Pkg() != pass.Pkg {
		return nil
	}
	param, ok := analysis.Deref(sig.Params().At(0).Type()).(*types.Named)
	if !ok || param.Obj() != recv.Obj() {
		return nil
	}
	return &check{typ: recv, excluded: make(map[string]bool)}
}

// verify walks fd's body and reports fields of c.typ that are neither
// touched nor excluded, plus exclusions the body contradicts.
func verify(pass *analysis.Pass, fd *ast.FuncDecl, c *check) {
	touched := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel := pass.TypesInfo.Selections[n]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			if recv, ok := types.Unalias(analysis.Deref(sel.Recv())).(*types.Named); ok && recv.Obj() == c.typ.Obj() {
				touched[n.Sel.Name] = true
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			named, ok := types.Unalias(analysis.Deref(tv.Type)).(*types.Named)
			if !ok || named.Obj() != c.typ.Obj() {
				return true
			}
			st := named.Underlying().(*types.Struct)
			for i, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						touched[key.Name] = true
					}
				} else if i < st.NumFields() {
					touched[st.Field(i).Name()] = true // positional literal
				}
			}
		}
		return true
	})

	name := c.typ.Obj().Name()
	st := c.typ.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		fname := st.Field(i).Name()
		switch {
		case touched[fname] && c.excluded[fname]:
			pass.Reportf(fd.Name.Pos(),
				"stale exclusion: %s merges field %s of %s but the directive excludes it; drop -%s",
				fd.Name.Name, fname, name, fname)
		case !touched[fname] && !c.excluded[fname]:
			pass.Reportf(fd.Name.Pos(),
				"%s does not merge field %s of %s; accumulate it, or record the deliberate omission with //hcpath:mergefields %s -%s",
				fd.Name.Name, fname, name, name, fname)
		}
	}
}

func isStruct(n *types.Named) bool {
	_, ok := n.Underlying().(*types.Struct)
	return ok
}

func hasField(n *types.Named, name string) bool {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
