// Package analysis is a dependency-free reimplementation of the small
// slice of golang.org/x/tools/go/analysis that the repository's custom
// vetters need: an Analyzer runs over one type-checked package (a Pass)
// and reports position-anchored Diagnostics. The repo vendors no
// third-party modules, so the framework is built on the standard
// library's go/ast, go/types and go/importer alone; the API mirrors
// x/tools so the analyzers port mechanically if the dependency is ever
// adopted.
//
// The five analyzers under internal/analysis/... encode the invariants
// PRs 1–5 established by hand: cancellation polling in enumeration hot
// loops (ctrlpoll), snapshot-derived index epochs (epochbind),
// struct-field exhaustive stats merging (statsmerge), no blocking
// operations under mutexes (locksend), and allocation-free annotated
// hot paths (hotalloc). cmd/hcpathvet runs them all; see CONTRIBUTING
// ("Static analysis invariants") for the annotation contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. Run inspects the Pass's
// package and reports findings through Pass.Report; a non-nil error
// means the analyzer itself failed (not that the code has findings).
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "ctrlpoll"
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic; set by the runner.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// ---------------------------------------------------------------------
// Shared type predicates
// ---------------------------------------------------------------------

// Deref unwraps one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// IsNamed reports whether t — after one pointer dereference — is the
// named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ReceiverOf resolves a call expression to the method's receiver
// expression and its type, or (nil, nil) for non-method calls.
func ReceiverOf(info *types.Info, call *ast.CallExpr) (ast.Expr, types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	if info.Selections[sel] == nil {
		return nil, nil // qualified identifier (pkg.Func), not a method
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil, nil
	}
	return sel.X, tv.Type
}

// CalleeFunc resolves a call expression to the *types.Func it invokes —
// a declared function or method — or nil for calls of function-typed
// values, builtins and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// ---------------------------------------------------------------------
// hcpath: directives
// ---------------------------------------------------------------------

// directivePrefix introduces the repository's analyzer annotations,
// e.g. //hcpath:noalloc or //hcpath:mergefields Totals -Epoch.
const directivePrefix = "//hcpath:"

// FuncDirective reports whether fn's doc comment carries the directive
// //hcpath:<name> and returns the rest of that line (its arguments,
// trimmed). The directive must start its own comment line.
func FuncDirective(fn *ast.FuncDecl, name string) (args string, ok bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		rest, found := strings.CutPrefix(c.Text, directivePrefix+name)
		if !found {
			continue
		}
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// Suppressions indexes a file's //hcpath: directive comments by line so
// analyzers can honour statement-level opt-outs such as
// //hcpath:locksend-ok <reason>. A suppression applies to findings on
// its own line and on the line directly below (the full-line-comment-
// above-the-statement idiom).
type Suppressions struct {
	fset   *token.FileSet
	byLine map[int][]string
}

// SuppressionsFor scans file's comments for hcpath: directives.
func SuppressionsFor(fset *token.FileSet, file *ast.File) *Suppressions {
	s := &Suppressions{fset: fset, byLine: make(map[int][]string)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, directivePrefix)
			if !found {
				continue
			}
			line := fset.Position(c.Pos()).Line
			s.byLine[line] = append(s.byLine[line], rest)
		}
	}
	return s
}

// Has reports whether directive name (with any arguments) is present on
// pos's line or the line above it.
func (s *Suppressions) Has(pos token.Pos, name string) bool {
	line := s.fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range s.byLine[l] {
			if d == name || strings.HasPrefix(d, name+" ") {
				return true
			}
		}
	}
	return false
}
