package epochbind_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/epochbind"
)

func TestEpochbind(t *testing.T) {
	analysistest.Run(t, "../testdata", epochbind.Analyzer, "epochbind_a")
}
