// Package epochbind reports index acquisitions whose epoch is a
// compile-time constant. The cross-batch index cache keys entries by
// (generation, direction, vertex, cap) where the generation is bound to
// the store epoch; an epoch that does not come from the live
// store.Snapshot pins the binding to one generation forever, so queries
// after an update are served stale distance maps — the exact staleness
// class PR 4's versioned store closed.
//
// Checked sites, outside _test.go files:
//
//   - the epoch argument of any hcindex Acquire method
//     (Provider/Cache/Builder all share the signature);
//   - an explicit Epoch key in a batchenum.Options composite literal;
//   - an assignment to an Options.Epoch field.
//
// Deriving the value — snap.Epoch(), a variable, a struct field — is
// fine; only constants are flagged. A static-graph engine expresses
// "epoch zero, forever" by omitting the field, never by writing 0.
package epochbind

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

const (
	hcindexPkg   = "repro/internal/hcindex"
	batchenumPkg = "repro/internal/batchenum"
)

// Analyzer is the epochbind analysis.
var Analyzer = &analysis.Analyzer{
	Name: "epochbind",
	Doc:  "index epochs must derive from a store.Snapshot, never a constant",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAcquire(pass, n)
			case *ast.CompositeLit:
				checkOptionsLit(pass, n)
			case *ast.AssignStmt:
				checkEpochAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAcquire flags constant epoch arguments of hcindex Acquire calls.
func checkAcquire(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != hcindexPkg || fn.Name() != "Acquire" {
		return
	}
	// Acquire(g, gr, epoch, queries): epoch is the third argument.
	if len(call.Args) < 3 {
		return
	}
	reportConstEpoch(pass, call.Args[2], "epoch argument of hcindex Acquire")
}

// checkOptionsLit flags an explicit constant Epoch key in a
// batchenum.Options literal.
func checkOptionsLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !analysis.IsNamed(tv.Type, batchenumPkg, "Options") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Epoch" {
			reportConstEpoch(pass, kv.Value, "Epoch field of batchenum.Options")
		}
	}
}

// checkEpochAssign flags `opts.Epoch = <const>` on batchenum.Options.
func checkEpochAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Epoch" || i >= len(as.Rhs) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !analysis.IsNamed(tv.Type, batchenumPkg, "Options") {
			continue
		}
		reportConstEpoch(pass, as.Rhs[i], "Epoch field of batchenum.Options")
	}
}

// reportConstEpoch flags expr when the type checker evaluated it to a
// constant — a literal, a named constant, or constant arithmetic.
func reportConstEpoch(pass *analysis.Pass, expr ast.Expr, what string) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil {
		return
	}
	pass.Reportf(expr.Pos(),
		"constant %s as %s: bind the epoch to the live snapshot (store.Snapshot.Epoch()) so cache generations follow updates; omit the field entirely for a static graph",
		tv.Value, what)
}
