package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic resolved to a concrete source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies each analyzer to pkg and returns the combined
// findings sorted by position. An analyzer error aborts the run.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out, nil
}
