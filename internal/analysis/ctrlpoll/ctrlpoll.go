// Package ctrlpoll reports enumeration hot loops that scan graph
// adjacency while a *query.Control is in scope but never poll it, the
// cancellation-dead-loop class: a cancelled or deadline-blown run keeps
// expanding until the loop finishes on its own.
//
// A function participates when it can reach a Control — through a
// parameter or a receiver field. Within such a function, every loop
// that scans adjacency (calls OutNeighbors/OutDegree on the graph or
// store packages, directly or through a same-package helper that does
// and is not itself handed the Control) must be covered by a
// ctrl.Poll(&steps, &stopped) call somewhere in the function. Poll
// increments the caller's step counter before masking it against
// query.PollInterval, so per-step polling costs one increment and one
// branch; see the PollInterval doc in repro/internal/query for the
// masking contract the diagnostic points at.
package ctrlpoll

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

const (
	ctrlPkg  = "repro/internal/query"
	graphPkg = "repro/internal/graph"
	storePkg = "repro/internal/store"
)

// Analyzer is the ctrlpoll analysis.
var Analyzer = &analysis.Analyzer{
	Name: "ctrlpoll",
	Doc:  "adjacency-scanning loops in Control-bearing functions must call ctrl.Poll",
	Run:  run,
}

// summary is what one function contributes to the package-local scan
// closure.
type summary struct {
	decl       *ast.FuncDecl
	obj        *types.Func
	directScan bool          // calls OutNeighbors/OutDegree itself
	hasPoll    bool          // calls (*query.Control).Poll anywhere
	hasCtrl    bool          // a Control is reachable from params/receiver
	callees    []*types.Func // same-package callees
}

func run(pass *analysis.Pass) error {
	sums := make(map[*types.Func]*summary)
	var order []*summary
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &summary{decl: fd, obj: obj, hasCtrl: hasControlAccess(obj)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isScanCall(pass.TypesInfo, call) {
					s.directScan = true
				}
				if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
					if fn.Name() == "Poll" && fn.Pkg() != nil && fn.Pkg().Path() == ctrlPkg {
						s.hasPoll = true
					}
					if fn.Pkg() == pass.Pkg {
						s.callees = append(s.callees, fn)
					}
				}
				return true
			})
			sums[obj] = s
			order = append(order, s)
		}
	}

	// Package-local closure: a function scans if it scans directly or
	// calls a same-package function that does.
	scanner := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, s := range order {
			if scanner[s.obj] {
				continue
			}
			if s.directScan {
				scanner[s.obj] = true
				changed = true
				continue
			}
			for _, c := range s.callees {
				if scanner[c] {
					scanner[s.obj] = true
					changed = true
					break
				}
			}
		}
	}

	for _, s := range order {
		if !s.hasCtrl || s.hasPoll {
			continue
		}
		checkLoops(pass, s, scanner)
	}
	return nil
}

// checkLoops reports, once per loop, the innermost loop enclosing each
// unpolled adjacency scan in s.
func checkLoops(pass *analysis.Pass, s *summary, scanner map[*types.Func]bool) {
	type loopRange struct {
		node       ast.Node
		pos, end   token.Pos
		reportedAt bool
	}
	var loops []*loopRange
	var offenses []token.Pos
	ast.Inspect(s.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, &loopRange{node: n, pos: n.Pos(), end: n.End()})
		case *ast.CallExpr:
			if isScanCall(pass.TypesInfo, n) {
				offenses = append(offenses, n.Pos())
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, n)
			if fn != nil && fn.Pkg() == pass.Pkg && scanner[fn] && !ctrlMonitored(pass.TypesInfo, n) {
				offenses = append(offenses, n.Pos())
			}
		}
		return true
	})
	for _, off := range offenses {
		var innermost *loopRange
		for _, l := range loops {
			if off < l.pos || off >= l.end {
				continue
			}
			if innermost == nil || l.pos > innermost.pos {
				innermost = l
			}
		}
		if innermost == nil || innermost.reportedAt {
			continue
		}
		innermost.reportedAt = true
		pass.Reportf(innermost.node.Pos(),
			"loop scans adjacency but %s never calls (*query.Control).Poll; poll every expansion step with ctrl.Poll(&steps, &stopped) — Poll increments steps before masking against query.PollInterval (see repro/internal/query.PollInterval)",
			s.obj.Name())
	}
}

// hasControlAccess reports whether fn can reach a *query.Control: one
// of its parameters is a Control, or its receiver's struct type carries
// a Control field.
func hasControlAccess(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isControl(params.At(i).Type()) {
			return true
		}
	}
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	if isControl(recv.Type()) {
		return true
	}
	return structHasControl(recv.Type())
}

func isControl(t types.Type) bool {
	return analysis.IsNamed(t, ctrlPkg, "Control")
}

// structHasControl reports whether t (after deref) is a struct with a
// Control-typed field.
func structHasControl(t types.Type) bool {
	st, ok := analysis.Deref(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isControl(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isScanCall reports whether call is an adjacency probe: a method named
// OutNeighbors or OutDegree on the graph or store packages.
func isScanCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != "OutNeighbors" && fn.Name() != "OutDegree" {
		return false
	}
	path := fn.Pkg().Path()
	return path == graphPkg || path == storePkg
}

// ctrlMonitored reports whether the call hands its callee a way to
// observe cancellation: a Control argument, or a method receiver whose
// struct carries a Control field.
func ctrlMonitored(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isControl(tv.Type) {
			return true
		}
	}
	if recv, rt := analysis.ReceiverOf(info, call); recv != nil {
		if isControl(rt) || structHasControl(rt) {
			return true
		}
	}
	return false
}
