package ctrlpoll_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctrlpoll"
)

func TestCtrlpoll(t *testing.T) {
	analysistest.Run(t, "../testdata", ctrlpoll.Analyzer, "ctrlpoll_a")
}
