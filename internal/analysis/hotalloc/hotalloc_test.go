package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "../testdata", hotalloc.Analyzer, "hotalloc_a")
}
