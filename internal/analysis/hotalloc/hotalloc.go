// Package hotalloc verifies that functions annotated
//
//	//hcpath:noalloc
//
// contain no allocating constructs, seeding the ROADMAP's
// allocation-free hot-path work with a static gate (cmd/benchdiff's
// allocs/op regression check is the dynamic half of the pair).
//
// Flagged inside an annotated function:
//
//   - make and new;
//   - slice and map composite literals, and address-taken composite
//     literals (&T{...} always escapes to the heap);
//   - append whose destination differs from its source — x = append(x,
//     ...) into a retained buffer is amortised allocation-free, any
//     other shape grows a fresh backing array;
//   - map writes (insertion can grow the table);
//   - string concatenation and any call into package fmt;
//   - function literals and go statements;
//   - calls to same-package functions not themselves annotated
//     //hcpath:noalloc, so the guarantee composes instead of stopping
//     at the first helper.
//
// Calls across package boundaries and through interfaces are trusted —
// the annotation documents a reviewed local property, not a
// whole-program escape analysis.
package hotalloc

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotalloc analysis.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//hcpath:noalloc functions must not allocate",
	Run:  run,
}

const directive = "noalloc"

func run(pass *analysis.Pass) error {
	// Prepass: the package's annotated set, so noalloc functions may
	// call each other.
	annotated := make(map[*types.Func]bool)
	var targets []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fd, directive); !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				annotated[obj] = true
			}
			targets = append(targets, fd)
		}
	}
	for _, fd := range targets {
		checkFunc(pass, fd, annotated)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, annotated map[*types.Func]bool) {
	// Appends blessed by their assignment shape (x = append(x, ...)).
	okAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pass.TypesInfo, call, "append") || len(call.Args) == 0 {
				continue
			}
			if exprText(pass, as.Lhs[i]) == exprText(pass, call.Args[0]) {
				okAppend[call] = true
			}
		}
		return true
	})

	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //hcpath:noalloc but creates a closure (function literals allocate)", name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //hcpath:noalloc but starts a goroutine", name)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is //hcpath:noalloc but takes the address of a composite literal (escapes to the heap)", name)
					return false
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s is //hcpath:noalloc but builds a slice literal", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "%s is //hcpath:noalloc but builds a map literal", name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "%s is //hcpath:noalloc but concatenates strings", name)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := pass.TypesInfo.Types[idx.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(lhs.Pos(), "%s is //hcpath:noalloc but writes to a map (insertion can grow the table)", name)
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n, annotated, okAppend)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, annotated map[*types.Func]bool, okAppend map[*ast.CallExpr]bool) {
	name := fd.Name.Name
	switch {
	case isBuiltin(pass.TypesInfo, call, "make"):
		pass.Reportf(call.Pos(), "%s is //hcpath:noalloc but calls make", name)
		return
	case isBuiltin(pass.TypesInfo, call, "new"):
		pass.Reportf(call.Pos(), "%s is //hcpath:noalloc but calls new", name)
		return
	case isBuiltin(pass.TypesInfo, call, "append"):
		if !okAppend[call] {
			pass.Reportf(call.Pos(), "%s is //hcpath:noalloc but appends to a destination other than its source; only x = append(x, ...) into a retained buffer is amortised allocation-free", name)
		}
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return // builtin, conversion, or function-typed value: out of scope
	}
	if fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is //hcpath:noalloc but calls fmt.%s", name, fn.Name())
		return
	}
	if fn.Pkg() != pass.Pkg {
		return // cross-package calls are trusted
	}
	if isInterfaceMethod(pass.TypesInfo, call) {
		return // dynamic dispatch is trusted like a package boundary
	}
	if !annotated[fn] {
		pass.Reportf(call.Pos(), "%s is //hcpath:noalloc but calls %s, which is not annotated //hcpath:noalloc", name, fn.Name())
	}
}

// isInterfaceMethod reports whether call dispatches through an
// interface value.
func isInterfaceMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	_, ok = s.Recv().Underlying().(*types.Interface)
	return ok
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func exprText(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return "?!"
	}
	return buf.String()
}
