package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// A Loader parses and type-checks packages from source. It wraps the
// standard library's source importer, so dependencies — both standard
// and in-module — are themselves type-checked from source and cached
// across LoadDir calls; no export data or third-party loader is needed.
// The process must run inside the module (any subdirectory) for
// in-module import paths to resolve.
type Loader struct {
	Fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a Loader with a fresh FileSet and importer cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// LoadDir loads the package in dir under the given import path.
// includeTests adds the package's in-package _test.go files (external
// foo_test packages are never loaded) — the fixture harness uses this;
// cmd/hcpathvet checks non-test sources only.
func (l *Loader) LoadDir(dir, importPath string, includeTests bool) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: load %s: %w", dir, err)
	}
	names := append([]string{}, bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      pkg,
		TypesInfo:  info,
	}, nil
}
