package locksend_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/locksend"
)

func TestLocksend(t *testing.T) {
	analysistest.Run(t, "../testdata", locksend.Analyzer, "locksend_a")
}
