// Package locksend reports potentially blocking operations performed
// while a sync.Mutex or sync.RWMutex is held — the service/collector
// deadlock class: a channel send that blocks under a lock stalls every
// other goroutine that needs the lock, including the one that would
// have drained the channel.
//
// Flagged while a lock is held in the same function:
//
//   - channel sends, receives, selects, and ranges over channels;
//   - sync.WaitGroup.Wait (sync.Cond.Wait is exempt — it requires the
//     lock by contract and releases it while blocked);
//   - calls of function-typed values (fields, variables, parameters):
//     a callback can do anything, including re-entering the lock.
//
// Interface method calls and cross-package function calls are trusted —
// flagging every dynamic dispatch would drown the signal; the analysis
// is also purely intra-procedural and per-branch (a lock acquired and
// released on every path of a branch statement is tracked through it).
//
// Deliberately blocking designs — a send whose consumer is guaranteed
// live, a callback serialised under a dedicated mutex — opt out per
// statement with
//
//	//hcpath:locksend-ok <why the blocking is bounded>
//
// on the statement's line or the line above. The reason is mandatory by
// convention: the annotation documents a reviewed design, not a muted
// warning.
package locksend

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the locksend analysis.
var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc:  "no channel operations, blocking sync calls, or callbacks under a mutex",
	Run:  run,
}

const suppress = "locksend-ok"

// acq records one live lock acquisition.
type acq struct {
	expr  string // canonical receiver text, e.g. "s.mu"
	rlock bool
	pos   token.Pos
}

type lockSet map[string]acq

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersect keeps acquisitions live in every surviving branch.
func intersect(sets []lockSet) lockSet {
	if len(sets) == 0 {
		return lockSet{}
	}
	out := sets[0].clone()
	for _, s := range sets[1:] {
		for k := range out {
			if _, ok := s[k]; !ok {
				delete(out, k)
			}
		}
	}
	return out
}

type checker struct {
	pass *analysis.Pass
	supp *analysis.Suppressions
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		c := &checker{pass: pass, supp: analysis.SuppressionsFor(pass.Fset, f)}
		// Every function body — declarations and literals — is its own
		// lock scope; closures are assumed to run outside the critical
		// section that created them.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.block(n.Body.List, lockSet{})
				}
			case *ast.FuncLit:
				c.block(n.Body.List, lockSet{})
			}
			return true
		})
	}
	return nil
}

// block walks stmts linearly, threading the lock set; the bool result
// reports control-flow termination (return/branch).
func (c *checker) block(stmts []ast.Stmt, held lockSet) (lockSet, bool) {
	held = held.clone()
	for _, st := range stmts {
		var term bool
		held, term = c.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (c *checker) stmt(st ast.Stmt, held lockSet) (lockSet, bool) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return c.block(st.List, held)
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, held)
	case *ast.ReturnStmt:
		c.scan(st, held)
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; stop conservatively.
		return held, true
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = c.stmt(st.Init, held)
		}
		c.scanExpr(st.Cond, held)
		var surviving []lockSet
		if thenSet, term := c.block(st.Body.List, held); !term {
			surviving = append(surviving, thenSet)
		}
		if st.Else != nil {
			if elseSet, term := c.stmt(st.Else, held); !term {
				surviving = append(surviving, elseSet)
			}
		} else {
			surviving = append(surviving, held)
		}
		if len(surviving) == 0 {
			return held, true
		}
		return intersect(surviving), false
	case *ast.SelectStmt:
		if len(held) > 0 {
			c.violation(st.Pos(), held, "select performs channel operations")
		}
		var surviving []lockSet
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			// The comm clause is the channel operation the select-level
			// report already covers; only its body is walked.
			if set, term := c.block(cc.Body, held); !term {
				surviving = append(surviving, set)
			}
		}
		if len(surviving) == 0 {
			return held, true
		}
		return intersect(surviving), false
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = c.stmt(st.Init, held)
		}
		c.scanExpr(st.Tag, held)
		return c.caseClauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		return c.caseClauses(st.Body, held)
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = c.stmt(st.Init, held)
		}
		c.scanExpr(st.Cond, held)
		c.block(st.Body.List, held)
		return held, false
	case *ast.RangeStmt:
		if len(held) > 0 {
			if tv, ok := c.pass.TypesInfo.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					c.violation(st.Pos(), held, "range receives from a channel")
				}
			}
		}
		c.scanExpr(st.X, held)
		c.block(st.Body.List, held)
		return held, false
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end, which
		// the linear walk models by simply not removing it; other
		// deferred calls run outside the critical section scanned here.
		return held, false
	case *ast.GoStmt:
		// Starting a goroutine does not block; its argument expressions
		// are still evaluated under the lock.
		for _, arg := range st.Call.Args {
			c.scanExpr(arg, held)
		}
		return held, false
	default:
		c.scan(st, held)
		return c.applyLockEffects(st, held), false
	}
}

// caseClauses folds a switch body: every clause runs with the entry
// set; the fall-out set is the intersection of surviving clauses and
// the entry set itself (no clause may match).
func (c *checker) caseClauses(body *ast.BlockStmt, held lockSet) (lockSet, bool) {
	surviving := []lockSet{held}
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			c.scanExpr(e, held)
		}
		if set, term := c.block(cc.Body, held); !term {
			surviving = append(surviving, set)
		}
	}
	return intersect(surviving), false
}

// applyLockEffects updates held for a Lock/Unlock call statement.
func (c *checker) applyLockEffects(st ast.Stmt, held lockSet) lockSet {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return held
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return held
	}
	name, recv := c.mutexMethod(call)
	if recv == "" {
		return held
	}
	switch name {
	case "Lock", "RLock":
		held = held.clone()
		held[recv] = acq{expr: recv, rlock: name == "RLock", pos: call.Pos()}
	case "Unlock", "RUnlock":
		held = held.clone()
		delete(held, recv)
	}
	return held
}

// mutexMethod resolves call to a sync.Mutex/RWMutex method name and the
// canonical text of its receiver; recv is "" for anything else.
func (c *checker) mutexMethod(call *ast.CallExpr) (name, recv string) {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	recvExpr, _ := analysis.ReceiverOf(c.pass.TypesInfo, call)
	if recvExpr == nil {
		return "", ""
	}
	return fn.Name(), c.exprString(recvExpr)
}

// scan inspects one non-branching statement for blocking operations,
// skipping nested function literals (they execute later).
func (c *checker) scan(n ast.Node, held lockSet) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.violation(n.Pos(), held, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.violation(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			c.checkCall(n, held)
		}
		return true
	})
}

func (c *checker) scanExpr(e ast.Expr, held lockSet) {
	if e != nil {
		c.scan(e, held)
	}
}

// checkCall flags blocking sync calls and dynamic callback invocations.
func (c *checker) checkCall(call *ast.CallExpr, held lockSet) {
	if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
			if _, rt := analysis.ReceiverOf(c.pass.TypesInfo, call); rt != nil && analysis.IsNamed(rt, "sync", "WaitGroup") {
				c.violation(call.Pos(), held, "sync.WaitGroup.Wait")
			}
		}
		return // static function or method call: trusted
	}
	fun := ast.Unparen(call.Fun)
	if tv, ok := c.pass.TypesInfo.Types[fun]; !ok || tv.IsType() {
		return // conversion
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.Uses[fun].(*types.Var); ok && isFuncType(v.Type()) {
			c.violation(call.Pos(), held, "call of function-typed value "+fun.Name)
		}
	case *ast.SelectorExpr:
		if sel := c.pass.TypesInfo.Selections[fun]; sel != nil && sel.Kind() == types.FieldVal && isFuncType(sel.Type()) {
			c.violation(call.Pos(), held, "call of function-typed field "+fun.Sel.Name)
		}
	}
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// violation reports what at pos unless a //hcpath:locksend-ok directive
// covers the line.
func (c *checker) violation(pos token.Pos, held lockSet, what string) {
	if c.supp.Has(pos, suppress) {
		return
	}
	var lock acq
	for _, a := range held { // any held lock; deterministic enough for one
		if lock.expr == "" || a.expr < lock.expr {
			lock = a
		}
	}
	kind := "Lock"
	if lock.rlock {
		kind = "RLock"
	}
	c.pass.Reportf(pos,
		"%s while holding %s (%s'd at %s); a blocked operation under a mutex stalls every contender — move it outside the critical section, or annotate //hcpath:locksend-ok <reason> for a reviewed bounded-blocking design",
		what, lock.expr, kind, c.pass.Fset.Position(lock.pos))
}

func (c *checker) exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, c.pass.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
