package oracle

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

func TestCountCompleteDAG(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	// paths 0→6 with ≤6 hops = 2^5 = 32 (any subset of {1..5} visited).
	if got := Count(g, query.Query{S: 0, T: 6, K: 6}); got != 32 {
		t.Fatalf("Count = %d, want 32", got)
	}
}

func TestPathsCanonicalOrderAndValidity(t *testing.T) {
	g := testgraphs.Diamond()
	ps := Paths(g, query.Query{S: 0, T: 3, K: 3})
	if len(ps) == 0 {
		t.Fatal("diamond 0→3 has paths")
	}
	for i, p := range ps {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("path %d does not run s→t: %v", i, p)
		}
		if !pathjoin.IsSimple(p) {
			t.Fatalf("path %d not simple: %v", i, p)
		}
		for j := 0; j+1 < len(p); j++ {
			if !hasEdge(g, p[j], p[j+1]) {
				t.Fatalf("path %d uses missing edge %d→%d", i, p[j], p[j+1])
			}
		}
		if i > 0 && !ordered(ps[i-1], p) {
			t.Fatalf("paths out of canonical order at %d: %v before %v", i, ps[i-1], p)
		}
	}
	// No duplicates in the canonical listing.
	seen := map[string]bool{}
	for _, p := range ps {
		k := fmt.Sprint(p)
		if seen[k] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[k] = true
	}
}

func hasEdge(g *graph.Graph, u, v graph.VertexID) bool {
	for _, w := range g.OutNeighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// ordered reports a ≤ b in (hops, lexicographic) order.
func ordered(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return true
}
