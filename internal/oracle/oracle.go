// Package oracle holds the brute-force reference enumerator every
// correctness test in the repository differentially checks against: an
// unpruned, index-free bounded DFS whose only virtue is being obviously
// correct. It is O(n^k) — tests and tiny graphs only.
package oracle

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/query"
)

// Enumerate emits every simple S-T path of q with at most K hops, by
// plain DFS over the adjacency with a visited map. The emitted slice is
// reused between calls and must be copied to be retained.
func Enumerate(g *graph.Graph, q query.Query, emit func(path []graph.VertexID)) {
	path := make([]graph.VertexID, 1, int(q.K)+1)
	path[0] = q.S
	onPath := map[graph.VertexID]bool{q.S: true}
	var rec func()
	rec = func() {
		v := path[len(path)-1]
		if v == q.T && len(path) > 1 {
			emit(path)
			return // simple paths cannot revisit t
		}
		if uint8(len(path)-1) >= q.K {
			return
		}
		for _, w := range g.OutNeighbors(v) {
			if onPath[w] {
				continue
			}
			path = append(path, w)
			onPath[w] = true
			rec()
			onPath[w] = false
			path = path[:len(path)-1]
		}
	}
	rec()
}

// Count returns |P(q)| via Enumerate.
func Count(g *graph.Graph, q query.Query) int64 {
	var n int64
	Enumerate(g, q, func([]graph.VertexID) { n++ })
	return n
}

// Paths materialises the full result set in canonical (hops, then
// lexicographic) order — the order the KSP baselines promise, and a
// stable shape for set comparisons in differential tests.
func Paths(g *graph.Graph, q query.Query) [][]graph.VertexID {
	var out [][]graph.VertexID
	Enumerate(g, q, func(p []graph.VertexID) {
		cp := make([]graph.VertexID, len(p))
		copy(cp, p)
		out = append(out, cp)
	})
	SortPaths(out)
	return out
}

// SortPaths orders paths by (hops, lexicographic) in place.
func SortPaths(paths [][]graph.VertexID) {
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) < len(paths[j])
		}
		a, b := paths[i], paths[j]
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
}
